//! Property tests on the context store: random operation sequences keep
//! the tree consistent, archive/restore is lossless, and the monolith and
//! decomposed facades agree on the same store.

use std::sync::Arc;

use portalws_services::context::{ContextManagerMonolith, ContextStore, DecomposedContextServices};
use portalws_soap::{CallContext, SoapService, SoapValue};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    AddProblem(u8),
    AddSession(u8, u8),
    RemoveProblem(u8),
    SetProp(u8, u8, String),
    Rename(u8, u8),
    Copy(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::AddProblem),
        (0u8..4, 0u8..4).prop_map(|(p, s)| Op::AddSession(p, s)),
        (0u8..4).prop_map(Op::RemoveProblem),
        (0u8..4, 0u8..4, "[a-z]{1,8}").prop_map(|(p, s, v)| Op::SetProp(p, s, v)),
        (0u8..4, 4u8..8).prop_map(|(p, n)| Op::Rename(p, n)),
        (0u8..4).prop_map(Op::Copy),
    ]
}

proptest! {
    #[test]
    fn random_op_sequences_keep_the_tree_consistent(
        ops in proptest::collection::vec(op_strategy(), 0..40),
    ) {
        let store = ContextStore::new();
        store.add(&["user"]).unwrap();
        for op in ops {
            // Every operation either succeeds or returns a typed error;
            // no operation may corrupt the store.
            match op {
                Op::AddProblem(p) => {
                    let _ = store.add(&["user", &format!("p{p}")]);
                }
                Op::AddSession(p, s) => {
                    let _ = store.add(&["user", &format!("p{p}"), &format!("s{s}")]);
                }
                Op::RemoveProblem(p) => {
                    let _ = store.remove(&["user", &format!("p{p}")]);
                }
                Op::SetProp(p, s, v) => {
                    let _ = store.set_property(
                        &["user", &format!("p{p}"), &format!("s{s}")],
                        "k",
                        &v,
                    );
                }
                Op::Rename(p, n) => {
                    let _ = store.rename(&["user", &format!("p{p}")], &format!("p{n}"));
                }
                Op::Copy(p) => {
                    let _ = store.copy(&["user", &format!("p{p}")], &format!("copy{p}"));
                }
            }
            // Invariants after every step:
            // 1. total_count agrees with a fresh traversal via archive.
            let archived = store.archive(&["user"]).unwrap();
            prop_assert_eq!(archived.subtree_size_contexts(), store.total_count());
            // 2. every listed problem exists.
            for p in store.list(&["user"]).unwrap() {
                prop_assert!(store.exists(&["user", &p]));
            }
        }
    }

    #[test]
    fn archive_restore_is_lossless(
        problems in proptest::collection::vec(("[a-z]{1,6}", 0usize..4), 0..5),
    ) {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        for (name, sessions) in &problems {
            if store.add(&["u", name]).is_err() {
                continue; // duplicate problem name from the generator
            }
            for s in 0..*sessions {
                let session = format!("s{s}");
                store.add(&["u", name, &session]).unwrap();
                store
                    .set_property(&["u", name, &session], "idx", &s.to_string())
                    .unwrap();
            }
        }
        let archived = store.archive(&["u"]).unwrap();
        let restored = ContextStore::new();
        restored.restore(&[], &archived).unwrap();
        prop_assert_eq!(restored.total_count(), store.total_count());
        prop_assert_eq!(
            restored.archive(&["u"]).unwrap(),
            archived
        );
    }

    #[test]
    fn monolith_and_decomposed_see_the_same_store(
        key in "[a-z]{1,8}",
        value in "[a-z0-9]{1,12}",
    ) {
        let store = ContextStore::new();
        store.add(&["u"]).unwrap();
        store.add(&["u", "p"]).unwrap();
        let monolith = ContextManagerMonolith::new(Arc::clone(&store));
        let d = DecomposedContextServices::new(Arc::clone(&store));
        let ctx = CallContext {
            headers: vec![],
            service: "x".into(),
            method: "y".into(),
        };
        // Write through the monolith…
        monolith
            .invoke(
                "setProblemProperty",
                &[
                    ("u".into(), SoapValue::str("u")),
                    ("p".into(), SoapValue::str("p")),
                    ("k".into(), SoapValue::str(key.clone())),
                    ("v".into(), SoapValue::str(value.clone())),
                ],
                &ctx,
            )
            .unwrap();
        // …read through the decomposed property service.
        let got = d
            .properties
            .invoke(
                "get",
                &[
                    ("p".into(), SoapValue::str("/u/p")),
                    ("k".into(), SoapValue::str(key)),
                ],
                &ctx,
            )
            .unwrap();
        prop_assert_eq!(got, SoapValue::String(value));
    }
}

/// Count contexts in an archived document (helper trait used by the
/// consistency property).
trait ContextCount {
    fn subtree_size_contexts(&self) -> usize;
}

impl ContextCount for portalws_xml::Element {
    fn subtree_size_contexts(&self) -> usize {
        let own = 1;
        let children: usize = self
            .children()
            .filter(|c| c.local_name() != "property")
            .map(|c| c.subtree_size_contexts())
            .sum();
        own + children
    }
}
