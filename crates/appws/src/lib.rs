//! Application Web Services (§5): descriptors, instances, and adapters.
//!
//! "The Web Services described in Section 3 are really core services that
//! should be bound to a particular application. We thus believe the
//! important next step is to define a general purpose set of schemas that
//! describes how to use a particular application and bind it to the
//! services it needs."
//!
//! * [`descriptor`] — the **abstract application description** (§5.1
//!   state (a)): the application/host/queue container hierarchy, with
//!   basic-information, internal-communication (I/O fields bound to core
//!   services), execution-environment (core-service bindings), and the
//!   generic parameter escape hatch — the four "essential elements" the
//!   paper lists. Ships with the XML Schema the schema wizard consumes.
//! * [`instance`] — **application instances** (states (b)–(d)): prepared,
//!   running, and archived run records, "the backbone of a session
//!   archiving system".
//! * [`adapter`] — §5.2's narrow adapter: "an adapter class that
//!   encapsulates several Castor-generated get and set calls into a
//!   smaller interface definition for common tasks."

pub mod adapter;
pub mod descriptor;
pub mod instance;

pub use adapter::DescriptorAdapter;
pub use descriptor::{ApplicationDescriptor, HostBinding, IoField, QueueBinding, ServiceBinding};
pub use instance::{ApplicationInstance, LifecycleState};

use std::fmt;

/// Errors raised by the application-service layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppError {
    /// Descriptor or instance document malformed.
    Malformed(String),
    /// Lifecycle transition not allowed from the current state.
    BadTransition {
        /// State the instance is in.
        from: LifecycleState,
        /// Operation attempted.
        op: &'static str,
    },
    /// Requested binding (host/queue) is not in the descriptor.
    NoSuchBinding(String),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Malformed(msg) => write!(f, "malformed application document: {msg}"),
            AppError::BadTransition { from, op } => {
                write!(f, "cannot {op} from state {from}")
            }
            AppError::NoSuchBinding(what) => write!(f, "no such binding: {what}"),
        }
    }
}

impl std::error::Error for AppError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AppError>;
