//! Abstract application descriptors (§5.1).
//!
//! "The abstract application description is implemented as a set of three
//! schemas: application, host, and queue. These are implemented in a
//! container hierarchy, with applications containing one or more hosts,
//! and hosts containing queuing system descriptions."
//!
//! The descriptor's four essential elements, quoted from the paper:
//! 1. "basic information" — name, version, option flags;
//! 2. "internal communication" — input/output/error fields with
//!    core-service bindings;
//! 3. "execution environment" — core services needed to run, with host
//!    bindings;
//! 4. an optional generic parameter element for arbitrary name/value
//!    pairs.

use portalws_xml::{
    ComplexType, Element, ElementDecl, Occurs, Primitive, Schema, SimpleType, TypeDef,
};

use crate::{AppError, Result};

/// One I/O field of the application ("internal communication").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoField {
    /// Field name (`inputDeck`, `log`, …).
    pub name: String,
    /// Direction: `input`, `output`, or `error`.
    pub direction: String,
    /// Human description.
    pub description: String,
    /// Core service bound to move this field (e.g. `DataManagement`).
    pub service: String,
}

/// A core service required to execute the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceBinding {
    /// Core service name (`JobSubmission`, `DataManagement`, …).
    pub service: String,
    /// Host the service instance runs on, if pinned.
    pub host: Option<String>,
}

/// Queue binding inside a host binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueBinding {
    /// Queuing system name (PBS/LSF/NQS/GRD).
    pub scheduler: String,
    /// Queue name.
    pub queue: String,
    /// Largest sensible CPU request for this application here.
    pub max_cpus: u32,
    /// Longest sensible walltime (minutes).
    pub max_wall_minutes: u32,
}

/// Host binding: everything needed to invoke the application on one
/// resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostBinding {
    /// DNS name of the resource.
    pub dns: String,
    /// Dotted-quad address.
    pub ip: String,
    /// Location of the executable on this host.
    pub exec_path: String,
    /// Workspace / scratch directory.
    pub workdir: String,
    /// Queue bindings.
    pub queues: Vec<QueueBinding>,
    /// Host-specific name/value parameters (e.g. environment variables).
    pub parameters: Vec<(String, String)>,
}

/// The abstract application description — lifecycle state (a).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ApplicationDescriptor {
    /// Application name (standard across portals, per the paper's
    /// Gaussian example).
    pub name: String,
    /// Version string.
    pub version: String,
    /// Option flags the code accepts.
    pub option_flags: Vec<String>,
    /// I/O fields with service bindings.
    pub io_fields: Vec<IoField>,
    /// Core services required for execution.
    pub services: Vec<ServiceBinding>,
    /// Host bindings.
    pub hosts: Vec<HostBinding>,
    /// Generic parameters "to hold arbitrary information about the
    /// application that is not covered by the elements above".
    pub parameters: Vec<(String, String)>,
}

impl ApplicationDescriptor {
    /// Start a descriptor.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        ApplicationDescriptor {
            name: name.into(),
            version: version.into(),
            ..Default::default()
        }
    }

    /// Builder: add an option flag.
    pub fn with_flag(mut self, flag: impl Into<String>) -> Self {
        self.option_flags.push(flag.into());
        self
    }

    /// Builder: add an I/O field.
    pub fn with_io(mut self, field: IoField) -> Self {
        self.io_fields.push(field);
        self
    }

    /// Builder: require a core service.
    pub fn with_service(mut self, service: ServiceBinding) -> Self {
        self.services.push(service);
        self
    }

    /// Builder: add a host binding.
    pub fn with_host(mut self, host: HostBinding) -> Self {
        self.hosts.push(host);
        self
    }

    /// Builder: add a generic parameter.
    pub fn with_parameter(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.parameters.push((k.into(), v.into()));
        self
    }

    /// Find a host binding by DNS name.
    pub fn host(&self, dns: &str) -> Option<&HostBinding> {
        self.hosts.iter().find(|h| h.dns == dns)
    }

    /// Names of required core services.
    pub fn required_services(&self) -> Vec<&str> {
        self.services.iter().map(|s| s.service.as_str()).collect()
    }

    // ---- XML ---------------------------------------------------------------

    /// Serialize to the descriptor document format.
    pub fn to_element(&self) -> Element {
        let mut app = Element::new("application");
        // 1. Basic information.
        let mut basic = Element::new("basicInformation")
            .with_text_child("name", self.name.clone())
            .with_text_child("version", self.version.clone());
        for f in &self.option_flags {
            basic.push_child(Element::new("optionFlag").with_text(f.clone()));
        }
        app.push_child(basic);
        // 2. Internal communication.
        let mut comm = Element::new("internalCommunication");
        for field in &self.io_fields {
            comm.push_child(
                Element::new("field")
                    .with_attr("name", field.name.clone())
                    .with_attr("direction", field.direction.clone())
                    .with_text_child("description", field.description.clone())
                    .with_text_child("serviceBinding", field.service.clone()),
            );
        }
        app.push_child(comm);
        // 3. Execution environment.
        let mut exec = Element::new("executionEnvironment");
        for svc in &self.services {
            let mut s = Element::new("coreService").with_attr("name", svc.service.clone());
            if let Some(host) = &svc.host {
                s.set_attr("host", host.clone());
            }
            exec.push_child(s);
        }
        app.push_child(exec);
        // Hosts (the container hierarchy: application ⊃ host ⊃ queue).
        for host in &self.hosts {
            let mut h = Element::new("host")
                .with_attr("dns", host.dns.clone())
                .with_attr("ip", host.ip.clone())
                .with_text_child("execPath", host.exec_path.clone())
                .with_text_child("workdir", host.workdir.clone());
            for q in &host.queues {
                h.push_child(
                    Element::new("queue")
                        .with_attr("scheduler", q.scheduler.clone())
                        .with_attr("name", q.queue.clone())
                        .with_attr("maxCpus", q.max_cpus.to_string())
                        .with_attr("maxWallMinutes", q.max_wall_minutes.to_string()),
                );
            }
            for (k, v) in &host.parameters {
                h.push_child(
                    Element::new("parameter")
                        .with_attr("name", k.clone())
                        .with_text(v.clone()),
                );
            }
            app.push_child(h);
        }
        // 4. Generic parameters.
        for (k, v) in &self.parameters {
            app.push_child(
                Element::new("parameter")
                    .with_attr("name", k.clone())
                    .with_text(v.clone()),
            );
        }
        app
    }

    /// Parse a descriptor document.
    pub fn from_element(el: &Element) -> Result<ApplicationDescriptor> {
        if el.local_name() != "application" {
            return Err(AppError::Malformed(format!(
                "expected application, found {:?}",
                el.local_name()
            )));
        }
        let basic = el
            .find("basicInformation")
            .ok_or_else(|| AppError::Malformed("missing basicInformation".into()))?;
        let mut desc = ApplicationDescriptor::new(
            basic
                .find_text("name")
                .ok_or_else(|| AppError::Malformed("missing application name".into()))?,
            basic.find_text("version").unwrap_or(""),
        );
        desc.option_flags = basic
            .find_all("optionFlag")
            .map(|f| f.text().trim().to_owned())
            .collect();
        if let Some(comm) = el.find("internalCommunication") {
            for f in comm.find_all("field") {
                desc.io_fields.push(IoField {
                    name: f.attr("name").unwrap_or("").to_owned(),
                    direction: f.attr("direction").unwrap_or("input").to_owned(),
                    description: f.find_text("description").unwrap_or("").to_owned(),
                    service: f.find_text("serviceBinding").unwrap_or("").to_owned(),
                });
            }
        }
        if let Some(exec) = el.find("executionEnvironment") {
            for s in exec.find_all("coreService") {
                desc.services.push(ServiceBinding {
                    service: s.attr("name").unwrap_or("").to_owned(),
                    host: s.attr("host").map(str::to_owned),
                });
            }
        }
        for h in el.find_all("host") {
            let queues = h
                .find_all("queue")
                .map(|q| QueueBinding {
                    scheduler: q.attr("scheduler").unwrap_or("").to_owned(),
                    queue: q.attr("name").unwrap_or("").to_owned(),
                    max_cpus: q.attr("maxCpus").and_then(|v| v.parse().ok()).unwrap_or(1),
                    max_wall_minutes: q
                        .attr("maxWallMinutes")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(60),
                })
                .collect();
            let parameters = h
                .find_all("parameter")
                .map(|p| {
                    (
                        p.attr("name").unwrap_or("").to_owned(),
                        p.text().trim().to_owned(),
                    )
                })
                .collect();
            desc.hosts.push(HostBinding {
                dns: h.attr("dns").unwrap_or("").to_owned(),
                ip: h.attr("ip").unwrap_or("").to_owned(),
                exec_path: h.find_text("execPath").unwrap_or("").to_owned(),
                workdir: h.find_text("workdir").unwrap_or("").to_owned(),
                queues,
                parameters,
            });
        }
        desc.parameters = el
            .find_all("parameter")
            .map(|p| {
                (
                    p.attr("name").unwrap_or("").to_owned(),
                    p.text().trim().to_owned(),
                )
            })
            .collect();
        Ok(desc)
    }
}

/// The XML Schema for descriptor documents — what the schema wizard
/// downloads to auto-generate a UI (§5.3), and what deployment-time
/// validation runs against.
pub fn descriptor_schema() -> Schema {
    let string_el = |name: &str| ElementDecl::string(name);
    Schema::new("http://www.servogrid.org/GCWS/Schema/application")
        .with_type(
            "QueueType",
            TypeDef::Complex(
                ComplexType::default()
                    .with_attr(
                        "scheduler",
                        SimpleType::enumerated(["PBS", "LSF", "NQS", "GRD"]),
                        true,
                    )
                    .with_attr("name", SimpleType::plain(Primitive::String), true)
                    .with_attr("maxCpus", SimpleType::plain(Primitive::Int), false)
                    .with_attr("maxWallMinutes", SimpleType::plain(Primitive::Int), false),
            ),
        )
        .with_type(
            "ParameterType",
            TypeDef::Complex(
                ComplexType::default()
                    .with_text_content(SimpleType::plain(Primitive::String))
                    .with_attr("name", SimpleType::plain(Primitive::String), true),
            ),
        )
        .with_type(
            "HostType",
            TypeDef::Complex(
                ComplexType::default()
                    .with(string_el("execPath").doc("Location of the executable"))
                    .with(string_el("workdir").doc("Workspace / scratch directory"))
                    .with(ElementDecl::named("queue", "QueueType").occurs(Occurs::ANY))
                    .with(ElementDecl::named("parameter", "ParameterType").occurs(Occurs::ANY))
                    .with_attr("dns", SimpleType::plain(Primitive::String), true)
                    .with_attr("ip", SimpleType::plain(Primitive::String), false),
            ),
        )
        .with_element(ElementDecl::new(
            "application",
            TypeDef::Complex(
                ComplexType::default()
                    .with(ElementDecl::new(
                        "basicInformation",
                        TypeDef::Complex(
                            ComplexType::default()
                                .with(string_el("name").doc("Application name"))
                                .with(string_el("version").occurs(Occurs::OPTIONAL))
                                .with(string_el("optionFlag").occurs(Occurs::ANY)),
                        ),
                    ))
                    .with(ElementDecl::new(
                        "internalCommunication",
                        TypeDef::Complex(
                            ComplexType::default().with(
                                ElementDecl::new(
                                    "field",
                                    TypeDef::Complex(
                                        ComplexType::default()
                                            .with(string_el("description").occurs(Occurs::OPTIONAL))
                                            .with(
                                                string_el("serviceBinding")
                                                    .occurs(Occurs::OPTIONAL),
                                            )
                                            .with_attr(
                                                "name",
                                                SimpleType::plain(Primitive::String),
                                                true,
                                            )
                                            .with_attr(
                                                "direction",
                                                SimpleType::enumerated([
                                                    "input", "output", "error",
                                                ]),
                                                true,
                                            ),
                                    ),
                                )
                                .occurs(Occurs::ANY),
                            ),
                        ),
                    ))
                    .with(ElementDecl::new(
                        "executionEnvironment",
                        TypeDef::Complex(
                            ComplexType::default().with(
                                ElementDecl::new(
                                    "coreService",
                                    TypeDef::Complex(
                                        ComplexType::default()
                                            .with_attr(
                                                "name",
                                                SimpleType::plain(Primitive::String),
                                                true,
                                            )
                                            .with_attr(
                                                "host",
                                                SimpleType::plain(Primitive::String),
                                                false,
                                            ),
                                    ),
                                )
                                .occurs(Occurs::ANY),
                            ),
                        ),
                    ))
                    .with(ElementDecl::named("host", "HostType").occurs(Occurs::MANY))
                    .with(ElementDecl::named("parameter", "ParameterType").occurs(Occurs::ANY)),
            ),
        ))
}

/// A ready-made descriptor for the paper's own example: "The application
/// description for the chemistry code Gaussian, for example, can be
/// standard across portals."
pub fn gaussian_example() -> ApplicationDescriptor {
    ApplicationDescriptor::new("Gaussian", "98-A.9")
        .with_flag("-scrdir")
        .with_io(IoField {
            name: "inputDeck".into(),
            direction: "input".into(),
            description: "Gaussian route + molecule specification".into(),
            service: "DataManagement".into(),
        })
        .with_io(IoField {
            name: "logFile".into(),
            direction: "output".into(),
            description: "Gaussian log output".into(),
            service: "DataManagement".into(),
        })
        .with_service(ServiceBinding {
            service: "JobSubmission".into(),
            host: None,
        })
        .with_service(ServiceBinding {
            service: "BatchScriptGen".into(),
            host: None,
        })
        .with_host(HostBinding {
            dns: "tg-login.sdsc.edu".into(),
            ip: "10.0.0.8".into(),
            exec_path: "/usr/local/apps/gaussian/g98".into(),
            workdir: "/scratch/tg-login".into(),
            queues: vec![QueueBinding {
                scheduler: "PBS".into(),
                queue: "batch".into(),
                max_cpus: 16,
                max_wall_minutes: 720,
            }],
            parameters: vec![("GAUSS_SCRDIR".into(), "/scratch/tg-login/g98".into())],
        })
        .with_host(HostBinding {
            dns: "modi4.ucs.indiana.edu".into(),
            ip: "10.0.0.9".into(),
            exec_path: "/opt/gaussian/g98".into(),
            workdir: "/scratch/modi4".into(),
            queues: vec![QueueBinding {
                scheduler: "GRD".into(),
                queue: "normal".into(),
                max_cpus: 8,
                max_wall_minutes: 360,
            }],
            parameters: vec![],
        })
        .with_parameter("domain", "computational chemistry")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let d = gaussian_example();
        let parsed = ApplicationDescriptor::from_element(&d.to_element()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn descriptor_document_validates_against_schema() {
        let schema = descriptor_schema();
        schema.validate(&gaussian_example().to_element()).unwrap();
    }

    #[test]
    fn schema_rejects_missing_host() {
        let schema = descriptor_schema();
        let mut d = gaussian_example();
        d.hosts.clear();
        assert!(schema.validate(&d.to_element()).is_err());
    }

    #[test]
    fn schema_rejects_unknown_scheduler() {
        let schema = descriptor_schema();
        let mut d = gaussian_example();
        d.hosts[0].queues[0].scheduler = "SLURM".into();
        assert!(schema.validate(&d.to_element()).is_err());
    }

    #[test]
    fn schema_round_trips_through_xml() {
        let schema = descriptor_schema();
        let rt = Schema::from_xml(&schema.to_xml()).unwrap();
        assert_eq!(rt, schema);
        // The reparsed schema still validates descriptors.
        rt.validate(&gaussian_example().to_element()).unwrap();
    }

    #[test]
    fn host_and_service_lookups() {
        let d = gaussian_example();
        assert!(d.host("tg-login.sdsc.edu").is_some());
        assert!(d.host("nowhere").is_none());
        assert_eq!(
            d.required_services(),
            vec!["JobSubmission", "BatchScriptGen"]
        );
    }

    #[test]
    fn malformed_documents_rejected() {
        let el = Element::new("notanapp");
        assert!(ApplicationDescriptor::from_element(&el).is_err());
        let el = Element::new("application");
        assert!(ApplicationDescriptor::from_element(&el).is_err());
    }

    #[test]
    fn generic_parameters_are_separate_from_host_parameters() {
        let d = gaussian_example();
        let parsed = ApplicationDescriptor::from_element(&d.to_element()).unwrap();
        assert_eq!(parsed.parameters.len(), 1);
        assert_eq!(parsed.hosts[0].parameters.len(), 1);
        assert_eq!(parsed.hosts[1].parameters.len(), 0);
    }
}
