//! Application instances and the lifecycle of §5.1.
//!
//! "Web Services for science applications have at least four phases of
//! existence: (a) an abstract state … (b) a prepared (but not queued or
//! submitted) instance … (c) a running instance; and (d) an archived
//! instance of a completed application run." Instances of the instance
//! schema "contain the metadata about particular application runs: the
//! input files used, the location of the output, the resources used for
//! the computation" and "form the backbone of a session archiving
//! system".

use std::fmt;

use portalws_xml::Element;

use crate::descriptor::ApplicationDescriptor;
use crate::{AppError, Result};

/// Lifecycle phases. `Abstract` is represented by the descriptor itself;
/// instances begin at `Prepared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// The descriptor: choices not yet made.
    Abstract,
    /// Choices made, not yet submitted.
    Prepared,
    /// Submitted/running on the grid.
    Running,
    /// Completed and archived.
    Archived,
}

impl LifecycleState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            LifecycleState::Abstract => "abstract",
            LifecycleState::Prepared => "prepared",
            LifecycleState::Running => "running",
            LifecycleState::Archived => "archived",
        }
    }

    /// Parse a wire name.
    pub fn from_str_name(s: &str) -> Option<LifecycleState> {
        Some(match s {
            "abstract" => LifecycleState::Abstract,
            "prepared" => LifecycleState::Prepared,
            "running" => LifecycleState::Running,
            "archived" => LifecycleState::Archived,
            _ => return None,
        })
    }
}

impl fmt::Display for LifecycleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One run of an application: the user's specific choices plus run
/// metadata accumulated through the lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationInstance {
    /// Application name (links back to the descriptor).
    pub app_name: String,
    /// Application version at preparation time.
    pub app_version: String,
    /// Owning user.
    pub user: String,
    /// Current lifecycle state.
    pub state: LifecycleState,
    /// Chosen host (DNS).
    pub host: String,
    /// Chosen scheduler.
    pub scheduler: String,
    /// Chosen queue.
    pub queue: String,
    /// CPU count chosen.
    pub cpus: u32,
    /// Walltime chosen (minutes).
    pub wall_minutes: u32,
    /// Input files staged for the run (SRB paths).
    pub input_files: Vec<String>,
    /// Where output lands (SRB path).
    pub output_location: String,
    /// Grid job id, once running.
    pub job_id: Option<u64>,
    /// Exit code, once archived.
    pub exit_code: Option<i32>,
    /// Free-form user choices (option flags etc.).
    pub choices: Vec<(String, String)>,
}

impl ApplicationInstance {
    /// State (a) → (b): prepare an instance from a descriptor by choosing
    /// a host and queue binding. Validates the choice against the
    /// descriptor's container hierarchy.
    pub fn prepare(
        descriptor: &ApplicationDescriptor,
        user: impl Into<String>,
        host_dns: &str,
        queue: &str,
        cpus: u32,
        wall_minutes: u32,
    ) -> Result<ApplicationInstance> {
        let host = descriptor
            .host(host_dns)
            .ok_or_else(|| AppError::NoSuchBinding(format!("host {host_dns:?}")))?;
        let qb = host
            .queues
            .iter()
            .find(|q| q.queue == queue)
            .ok_or_else(|| AppError::NoSuchBinding(format!("queue {queue:?} on {host_dns}")))?;
        if cpus > qb.max_cpus {
            return Err(AppError::NoSuchBinding(format!(
                "queue {queue:?} binding allows at most {} cpus",
                qb.max_cpus
            )));
        }
        if wall_minutes > qb.max_wall_minutes {
            return Err(AppError::NoSuchBinding(format!(
                "queue {queue:?} binding allows at most {} minutes",
                qb.max_wall_minutes
            )));
        }
        Ok(ApplicationInstance {
            app_name: descriptor.name.clone(),
            app_version: descriptor.version.clone(),
            user: user.into(),
            state: LifecycleState::Prepared,
            host: host_dns.to_owned(),
            scheduler: qb.scheduler.clone(),
            queue: queue.to_owned(),
            cpus,
            wall_minutes,
            input_files: Vec::new(),
            output_location: String::new(),
            job_id: None,
            exit_code: None,
            choices: Vec::new(),
        })
    }

    /// Builder: record a staged input file.
    pub fn with_input(mut self, path: impl Into<String>) -> Self {
        self.input_files.push(path.into());
        self
    }

    /// Builder: record the output location.
    pub fn with_output(mut self, path: impl Into<String>) -> Self {
        self.output_location = path.into();
        self
    }

    /// Builder: record a user choice.
    pub fn with_choice(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.choices.push((k.into(), v.into()));
        self
    }

    /// State (b) → (c): the run was submitted.
    pub fn mark_running(&mut self, job_id: u64) -> Result<()> {
        if self.state != LifecycleState::Prepared {
            return Err(AppError::BadTransition {
                from: self.state,
                op: "mark_running",
            });
        }
        self.state = LifecycleState::Running;
        self.job_id = Some(job_id);
        Ok(())
    }

    /// State (c) → (d): the run completed; archive the record.
    pub fn archive(&mut self, exit_code: i32) -> Result<()> {
        if self.state != LifecycleState::Running {
            return Err(AppError::BadTransition {
                from: self.state,
                op: "archive",
            });
        }
        self.state = LifecycleState::Archived;
        self.exit_code = Some(exit_code);
        Ok(())
    }

    // ---- XML -----------------------------------------------------------

    /// Serialize as an `applicationInstance` document — what the context
    /// manager stores for session archiving.
    pub fn to_element(&self) -> Element {
        let mut el = Element::new("applicationInstance")
            .with_attr("application", self.app_name.clone())
            .with_attr("version", self.app_version.clone())
            .with_attr("user", self.user.clone())
            .with_attr("state", self.state.as_str())
            .with_child(
                Element::new("resources")
                    .with_attr("host", self.host.clone())
                    .with_attr("scheduler", self.scheduler.clone())
                    .with_attr("queue", self.queue.clone())
                    .with_attr("cpus", self.cpus.to_string())
                    .with_attr("wallMinutes", self.wall_minutes.to_string()),
            );
        let mut io = Element::new("io");
        for f in &self.input_files {
            io.push_child(Element::new("inputFile").with_text(f.clone()));
        }
        if !self.output_location.is_empty() {
            io.push_child(Element::new("outputLocation").with_text(self.output_location.clone()));
        }
        el.push_child(io);
        if let Some(id) = self.job_id {
            el.push_child(Element::new("jobId").with_text(id.to_string()));
        }
        if let Some(rc) = self.exit_code {
            el.push_child(Element::new("exitCode").with_text(rc.to_string()));
        }
        if !self.choices.is_empty() {
            let mut choices = Element::new("choices");
            for (k, v) in &self.choices {
                choices.push_child(
                    Element::new("choice")
                        .with_attr("name", k.clone())
                        .with_text(v.clone()),
                );
            }
            el.push_child(choices);
        }
        el
    }

    /// Parse an instance document.
    pub fn from_element(el: &Element) -> Result<ApplicationInstance> {
        if el.local_name() != "applicationInstance" {
            return Err(AppError::Malformed(format!(
                "expected applicationInstance, found {:?}",
                el.local_name()
            )));
        }
        let resources = el
            .find("resources")
            .ok_or_else(|| AppError::Malformed("missing resources".into()))?;
        let state = el
            .attr("state")
            .and_then(LifecycleState::from_str_name)
            .ok_or_else(|| AppError::Malformed("missing/bad state".into()))?;
        let io = el.find("io");
        Ok(ApplicationInstance {
            app_name: el.attr("application").unwrap_or("").to_owned(),
            app_version: el.attr("version").unwrap_or("").to_owned(),
            user: el.attr("user").unwrap_or("").to_owned(),
            state,
            host: resources.attr("host").unwrap_or("").to_owned(),
            scheduler: resources.attr("scheduler").unwrap_or("").to_owned(),
            queue: resources.attr("queue").unwrap_or("").to_owned(),
            cpus: resources
                .attr("cpus")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
            wall_minutes: resources
                .attr("wallMinutes")
                .and_then(|v| v.parse().ok())
                .unwrap_or(60),
            input_files: io
                .map(|io| {
                    io.find_all("inputFile")
                        .map(|f| f.text().trim().to_owned())
                        .collect()
                })
                .unwrap_or_default(),
            output_location: io
                .and_then(|io| io.find_text("outputLocation"))
                .unwrap_or("")
                .to_owned(),
            job_id: el.find_text("jobId").and_then(|v| v.parse().ok()),
            exit_code: el.find_text("exitCode").and_then(|v| v.parse().ok()),
            choices: el
                .find("choices")
                .map(|c| {
                    c.find_all("choice")
                        .map(|ch| {
                            (
                                ch.attr("name").unwrap_or("").to_owned(),
                                ch.text().trim().to_owned(),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::gaussian_example;

    fn prepared() -> ApplicationInstance {
        ApplicationInstance::prepare(
            &gaussian_example(),
            "alice@GCE.ORG",
            "tg-login.sdsc.edu",
            "batch",
            8,
            120,
        )
        .unwrap()
        .with_input("/home-alice/g98/in.com")
        .with_output("/home-alice/g98/out.log")
        .with_choice("scrdir", "/scratch/g98")
    }

    #[test]
    fn prepare_validates_against_descriptor() {
        let d = gaussian_example();
        assert!(ApplicationInstance::prepare(&d, "u", "nowhere", "batch", 1, 10).is_err());
        assert!(
            ApplicationInstance::prepare(&d, "u", "tg-login.sdsc.edu", "debug", 1, 10).is_err()
        );
        // cpu and walltime binding limits
        assert!(
            ApplicationInstance::prepare(&d, "u", "tg-login.sdsc.edu", "batch", 17, 10).is_err()
        );
        assert!(
            ApplicationInstance::prepare(&d, "u", "tg-login.sdsc.edu", "batch", 1, 100000).is_err()
        );
    }

    #[test]
    fn scheduler_comes_from_queue_binding() {
        let inst = prepared();
        assert_eq!(inst.scheduler, "PBS");
        assert_eq!(inst.state, LifecycleState::Prepared);
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut inst = prepared();
        inst.mark_running(42).unwrap();
        assert_eq!(inst.state, LifecycleState::Running);
        assert_eq!(inst.job_id, Some(42));
        inst.archive(0).unwrap();
        assert_eq!(inst.state, LifecycleState::Archived);
        assert_eq!(inst.exit_code, Some(0));
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut inst = prepared();
        assert!(inst.archive(0).is_err()); // prepared → archived skips running
        inst.mark_running(1).unwrap();
        assert!(inst.mark_running(2).is_err()); // already running
        inst.archive(1).unwrap();
        assert!(inst.mark_running(3).is_err()); // archived is terminal
        assert!(inst.archive(2).is_err());
    }

    #[test]
    fn xml_round_trip_all_states() {
        let mut inst = prepared();
        for _ in 0..3 {
            let rt = ApplicationInstance::from_element(&inst.to_element()).unwrap();
            assert_eq!(rt, inst);
            match inst.state {
                LifecycleState::Prepared => inst.mark_running(7).unwrap(),
                LifecycleState::Running => inst.archive(0).unwrap(),
                _ => break,
            }
        }
    }

    #[test]
    fn malformed_instance_rejected() {
        assert!(ApplicationInstance::from_element(&Element::new("x")).is_err());
        let el = Element::new("applicationInstance").with_attr("state", "prepared");
        assert!(ApplicationInstance::from_element(&el).is_err()); // no resources
        let el = Element::new("applicationInstance")
            .with_attr("state", "levitating")
            .with_child(Element::new("resources"));
        assert!(ApplicationInstance::from_element(&el).is_err());
    }

    #[test]
    fn state_names_round_trip() {
        for s in [
            LifecycleState::Abstract,
            LifecycleState::Prepared,
            LifecycleState::Running,
            LifecycleState::Archived,
        ] {
            assert_eq!(LifecycleState::from_str_name(s.as_str()), Some(s));
        }
    }
}
