//! The §5.2 adapter: a small task-oriented interface over the descriptor
//! document.
//!
//! "Converting all of the Castor methods to WSDL can be done but the
//! resulting interface is extremely complicated… Instead we are building
//! an adapter class that encapsulates several Castor-generated get and
//! set calls into a smaller interface definition for common tasks."
//!
//! [`DescriptorAdapter`] wraps the raw descriptor *document* (the
//! Castor-bean analogue) and exposes the handful of operations prototype
//! UI pages actually needed — each one internally a sequence of
//! element-tree gets and sets.

use portalws_xml::Element;

use crate::descriptor::ApplicationDescriptor;
use crate::instance::ApplicationInstance;
use crate::{AppError, Result};

/// Task-oriented adapter over an application descriptor document.
pub struct DescriptorAdapter {
    doc: Element,
    model: ApplicationDescriptor,
}

impl DescriptorAdapter {
    /// Wrap a descriptor document (validating its shape).
    pub fn new(doc: Element) -> Result<DescriptorAdapter> {
        // Parsing proves the shape; the adapter keeps the document form
        // because that is what is downloaded from the service, plus the
        // parsed model so read paths never re-parse (and never panic).
        let model = ApplicationDescriptor::from_element(&doc)?;
        Ok(DescriptorAdapter { doc, model })
    }

    /// The underlying document.
    pub fn document(&self) -> &Element {
        &self.doc
    }

    /// Task: the application's display name and version.
    pub fn title(&self) -> String {
        let d = self.model();
        format!("{} {}", d.name, d.version)
    }

    fn model(&self) -> &ApplicationDescriptor {
        &self.model
    }

    /// Task: the host/queue pairs a user can choose between.
    pub fn execution_choices(&self) -> Vec<(String, String, String)> {
        self.model()
            .hosts
            .iter()
            .flat_map(|h| {
                h.queues
                    .iter()
                    .map(|q| (h.dns.clone(), q.scheduler.clone(), q.queue.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Task: which input fields the UI must collect files for.
    pub fn input_fields(&self) -> Vec<String> {
        self.model()
            .io_fields
            .iter()
            .filter(|f| f.direction == "input")
            .map(|f| f.name.clone())
            .collect()
    }

    /// Task: the core services that must be discoverable before this
    /// application can be offered.
    pub fn required_services(&self) -> Vec<String> {
        self.model()
            .services
            .iter()
            .map(|s| s.service.clone())
            .collect()
    }

    /// Task: add (or replace) a host-specific environment parameter —
    /// what a deployer edits when adapting the descriptor to a site.
    pub fn set_host_parameter(&mut self, dns: &str, key: &str, value: &str) -> Result<()> {
        let host = self
            .doc
            .children_mut()
            .find(|h| h.local_name() == "host" && h.attr("dns") == Some(dns))
            .ok_or_else(|| AppError::NoSuchBinding(format!("host {dns:?}")))?;
        // Replace an existing parameter of the same name.
        let replaced = host
            .children_mut()
            .find(|p| p.local_name() == "parameter" && p.attr("name") == Some(key))
            .map(|p| {
                p.take_children();
                p.push_node(portalws_xml::Node::Text(value.to_owned()));
            })
            .is_some();
        if !replaced {
            host.push_child(
                Element::new("parameter")
                    .with_attr("name", key)
                    .with_text(value),
            );
        }
        // Keep the parsed model in sync with the mutated document.
        self.model = ApplicationDescriptor::from_element(&self.doc)?;
        Ok(())
    }

    /// Task: prepare an instance directly from the document (the common
    /// "fill out HTML forms to create an application instance" flow).
    pub fn prepare(
        &self,
        user: &str,
        host_dns: &str,
        queue: &str,
        cpus: u32,
        wall_minutes: u32,
    ) -> Result<ApplicationInstance> {
        ApplicationInstance::prepare(self.model(), user, host_dns, queue, cpus, wall_minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::gaussian_example;

    fn adapter() -> DescriptorAdapter {
        DescriptorAdapter::new(gaussian_example().to_element()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(DescriptorAdapter::new(Element::new("junk")).is_err());
        assert!(DescriptorAdapter::new(gaussian_example().to_element()).is_ok());
    }

    #[test]
    fn title_and_choices() {
        let a = adapter();
        assert_eq!(a.title(), "Gaussian 98-A.9");
        let choices = a.execution_choices();
        assert_eq!(choices.len(), 2);
        assert_eq!(
            choices[0],
            (
                "tg-login.sdsc.edu".to_string(),
                "PBS".to_string(),
                "batch".to_string()
            )
        );
    }

    #[test]
    fn input_fields_filtered_by_direction() {
        assert_eq!(adapter().input_fields(), vec!["inputDeck"]);
    }

    #[test]
    fn required_services_listed() {
        assert_eq!(
            adapter().required_services(),
            vec!["JobSubmission", "BatchScriptGen"]
        );
    }

    #[test]
    fn set_host_parameter_adds_and_replaces() {
        let mut a = adapter();
        a.set_host_parameter("modi4.ucs.indiana.edu", "GAUSS_SCRDIR", "/tmp/g98")
            .unwrap();
        let d = ApplicationDescriptor::from_element(a.document()).unwrap();
        assert_eq!(
            d.host("modi4.ucs.indiana.edu").unwrap().parameters,
            vec![("GAUSS_SCRDIR".to_string(), "/tmp/g98".to_string())]
        );
        // Replace.
        a.set_host_parameter("modi4.ucs.indiana.edu", "GAUSS_SCRDIR", "/var/g98")
            .unwrap();
        let d = ApplicationDescriptor::from_element(a.document()).unwrap();
        assert_eq!(d.host("modi4.ucs.indiana.edu").unwrap().parameters.len(), 1);
        assert!(a.set_host_parameter("nowhere", "k", "v").is_err());
    }

    #[test]
    fn prepare_through_adapter() {
        let inst = adapter()
            .prepare("alice", "modi4.ucs.indiana.edu", "normal", 4, 60)
            .unwrap();
        assert_eq!(inst.scheduler, "GRD");
    }
}
